package telemetry

import (
	"encoding/json"
	"fmt"

	"github.com/slimio/slimio/internal/sim"
)

// FlightRecord is the JSON payload of a flight-recorder dump: why it fired,
// the trailing metric samples (oldest first), and — when the cell has a
// tracer — the trailing vtrace spans, so the failure's last seconds of
// system state and activity are preserved together.
type FlightRecord struct {
	Cell       string        `json:"cell"`
	Reason     string        `json:"reason"`
	IntervalNS int64         `json:"interval_ns"`
	Names      []string      `json:"names"`
	Samples    []Sample      `json:"samples"`
	Spans      []FlightSpan  `json:"spans,omitempty"`
	Dropped    []FlightDrops `json:"dropped,omitempty"`
}

// FlightSpan is one trailing vtrace span in recording order.
type FlightSpan struct {
	Layer string   `json:"layer"`
	Name  string   `json:"name"`
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	Arg   int64    `json:"arg,omitempty"`
}

// FlightDrops notes gauges that dropped samples (misconfiguration evidence
// worth keeping in a failure artifact).
type FlightDrops struct {
	Gauge   string `json:"gauge"`
	Dropped int64  `json:"dropped"`
}

// EncodeFlight renders the cell's flight record as JSON. Unlike DumpFlight
// it neither touches the filesystem nor latches the dumped flag, so tests
// and callers with their own sinks can use it directly.
func (c *Cell) EncodeFlight(reason string) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: nil cell")
	}
	rec := FlightRecord{
		Cell:       c.label,
		Reason:     reason,
		IntervalNS: int64(c.interval),
		Names:      c.sorted,
	}
	if rec.Names == nil {
		rec.Names = c.GaugeNames()
	}
	for _, row := range c.flightRows() {
		rec.Samples = append(rec.Samples, Sample{T: row.t, V: row.v})
	}
	if c.tracer != nil {
		spans := c.tracer.Spans()
		if len(spans) > DefaultFlightSpans {
			spans = spans[len(spans)-DefaultFlightSpans:]
		}
		for i := range spans {
			s := &spans[i]
			rec.Spans = append(rec.Spans, FlightSpan{
				Layer: s.Layer, Name: s.Name, Start: s.Start, End: s.End, Arg: s.Arg,
			})
		}
	}
	for _, name := range c.GaugeNames() {
		if dropped, _ := c.gauges[name].Errors(); dropped > 0 {
			rec.Dropped = append(rec.Dropped, FlightDrops{Gauge: name, Dropped: dropped})
		}
	}
	data, err := json.MarshalIndent(&rec, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseFlight decodes a flight record and checks its basic shape.
func ParseFlight(data []byte) (*FlightRecord, error) {
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("telemetry: invalid flight JSON: %w", err)
	}
	if rec.Cell == "" {
		return nil, fmt.Errorf("telemetry: flight record missing cell")
	}
	if rec.Reason == "" {
		return nil, fmt.Errorf("telemetry: flight record missing reason")
	}
	for i, s := range rec.Samples {
		if len(s.V) != len(rec.Names) {
			return nil, fmt.Errorf("telemetry: flight sample %d has %d values, want %d", i, len(s.V), len(rec.Names))
		}
	}
	return &rec, nil
}
