package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
)

// Dump is the canonical telemetry artifact: every cell's sampled gauge
// series plus histogram summaries. All values are integers (virtual
// nanoseconds, counts, bytes), so encoding is byte-deterministic — the
// serial-vs-parallel golden test compares these bytes directly.
type Dump struct {
	IntervalNS int64      `json:"interval_ns"`
	Cells      []CellDump `json:"cells"`
}

// CellDump is one cell's telemetry in the dump.
type CellDump struct {
	Label string `json:"label"`
	// Names are the gauge names, sorted; every sample's V aligns to them.
	Names   []string   `json:"names"`
	Samples []Sample   `json:"samples"`
	Hists   []HistDump `json:"hists,omitempty"`
}

// Sample is one sampling tick: the virtual time and each gauge's value at
// that tick, ordered by CellDump.Names.
type Sample struct {
	T sim.Time `json:"t"`
	V []int64  `json:"v"`
}

// HistDump summarizes one cell histogram (log-bucketed, ≤2⁻⁷ relative
// quantile error — see metrics.Histogram).
type HistDump struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Snapshot renders the registry as a Dump, cells in sorted-label order.
func (r *Registry) Snapshot() *Dump {
	d := &Dump{IntervalNS: int64(r.Interval())}
	for _, label := range r.Labels() {
		d.Cells = append(d.Cells, r.Get(label).snapshot())
	}
	return d
}

// snapshot renders one cell: tick k's row is bucket k of every gauge (ticks
// and buckets align because the sampler and the gauges share one interval).
func (c *Cell) snapshot() CellDump {
	cd := CellDump{Label: c.Label(), Names: c.GaugeNames()}
	if c == nil {
		return cd
	}
	rows := 0
	for _, name := range cd.Names {
		if n := c.gauges[name].Len(); n > rows {
			rows = n
		}
	}
	for k := 0; k < rows; k++ {
		s := Sample{T: sim.Time(int64(k) * int64(c.interval)), V: make([]int64, len(cd.Names))}
		for i, name := range cd.Names {
			b := c.gauges[name].Bucket(k)
			if b.Samples > 0 {
				s.V[i] = b.Last
			} else if len(cd.Samples) > 0 {
				// Empty interior bucket: carry the previous tick forward so
				// the row stays a meaningful instantaneous state.
				s.V[i] = cd.Samples[len(cd.Samples)-1].V[i]
			}
		}
		cd.Samples = append(cd.Samples, s)
	}
	for _, name := range c.HistNames() {
		h := c.hists[name]
		cd.Hists = append(cd.Hists, HistDump{
			Name:  name,
			Count: h.Count(),
			Min:   int64(h.Min()),
			Max:   int64(h.Max()),
			Mean:  int64(h.Mean()),
			P50:   int64(h.Percentile(50)),
			P90:   int64(h.Percentile(90)),
			P99:   int64(h.Percentile(99)),
		})
	}
	return cd
}

// ExportJSON writes the registry as the canonical JSON dump.
func (r *Registry) ExportJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseDump decodes and validates a telemetry dump.
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("telemetry: invalid JSON: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ValidateDump checks data against the dump schema (see Validate). Used by
// `make top-smoke` the way trace-smoke uses vtrace.ValidateTrace.
func ValidateDump(data []byte) error {
	_, err := ParseDump(data)
	return err
}

// Validate checks the schema invariants the exporter promises: a positive
// interval, at least one cell, sorted unique gauge names, rows aligned to
// the name list, and strictly increasing tick times.
func (d *Dump) Validate() error {
	if d.IntervalNS <= 0 {
		return fmt.Errorf("telemetry: non-positive interval_ns %d", d.IntervalNS)
	}
	if len(d.Cells) == 0 {
		return fmt.Errorf("telemetry: no cells")
	}
	for _, c := range d.Cells {
		if c.Label == "" {
			return fmt.Errorf("telemetry: cell with empty label")
		}
		if !sort.StringsAreSorted(c.Names) {
			return fmt.Errorf("telemetry: %s: gauge names not sorted", c.Label)
		}
		for i := 1; i < len(c.Names); i++ {
			if c.Names[i] == c.Names[i-1] {
				return fmt.Errorf("telemetry: %s: duplicate gauge name %q", c.Label, c.Names[i])
			}
		}
		var prev sim.Time = -1
		for i, s := range c.Samples {
			if len(s.V) != len(c.Names) {
				return fmt.Errorf("telemetry: %s: sample %d has %d values, want %d", c.Label, i, len(s.V), len(c.Names))
			}
			if s.T <= prev {
				return fmt.Errorf("telemetry: %s: sample %d time %d not increasing", c.Label, i, int64(s.T))
			}
			prev = s.T
		}
	}
	return nil
}

// Column returns the index of name in the cell's gauge list, or -1.
func (c *CellDump) Column(name string) int {
	for i, n := range c.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// CSV renders one cell's samples as "t_ns,<gauge>,..." lines — integer
// columns only, so the bytes are deterministic.
func (c *CellDump) CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("t_ns")
	for _, name := range c.Names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	var buf [24]byte
	for _, s := range c.Samples {
		bw.Write(strconv.AppendInt(buf[:0], int64(s.T), 10))
		for _, v := range s.V {
			bw.WriteByte(',')
			bw.Write(strconv.AppendInt(buf[:0], v, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ExportOpenMetrics writes the registry's final state in OpenMetrics text
// exposition format: one gauge family per metric name with a `cell` label
// per cell (the value is the last sample), one summary family per
// histogram, and — when counters is non-empty — a counter family carrying
// harness-level totals such as the injected-fault counts from
// fault.Plan.Stats(). Everything is emitted in sorted order and integer
// arithmetic, so the bytes are deterministic.
func (r *Registry) ExportOpenMetrics(w io.Writer, counters []metrics.KV) error {
	bw := bufio.NewWriter(w)
	labels := r.Labels()

	// Union of gauge names across cells, sorted.
	nameSet := make(map[string]bool)
	histSet := make(map[string]bool)
	for _, label := range labels {
		c := r.Get(label)
		for _, n := range c.GaugeNames() {
			nameSet[n] = true
		}
		for _, n := range c.HistNames() {
			histSet[n] = true
		}
	}
	names := sortedKeys(nameSet)
	hists := sortedKeys(histSet)

	for _, name := range names {
		fam := "slimio_" + mangle(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		for _, label := range labels {
			c := r.Get(label)
			if c.Column(name) < 0 {
				continue
			}
			fmt.Fprintf(bw, "%s{cell=%q} %d\n", fam, label, c.gauges[name].Last())
		}
	}
	for _, name := range hists {
		fam := "slimio_" + mangle(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", fam)
		for _, label := range labels {
			c := r.Get(label)
			h := c.hists[name]
			if h == nil {
				continue
			}
			for _, q := range []struct {
				q string
				v int64
			}{
				{"0.5", int64(h.Percentile(50))},
				{"0.9", int64(h.Percentile(90))},
				{"0.99", int64(h.Percentile(99))},
			} {
				fmt.Fprintf(bw, "%s{cell=%q,quantile=\"%s\"} %d\n", fam, label, q.q, q.v)
			}
			fmt.Fprintf(bw, "%s_count{cell=%q} %d\n", fam, label, h.Count())
			fmt.Fprintf(bw, "%s_sum{cell=%q} %d\n", fam, label, int64(h.Sum()))
		}
	}
	if len(counters) > 0 {
		bw.WriteString("# TYPE slimio_counter counter\n")
		for _, kv := range counters {
			fmt.Fprintf(bw, "slimio_counter_total{name=%q} %d\n", kv.Key, kv.Value)
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// Column is a convenience on live cells mirroring CellDump.Column.
func (c *Cell) Column(name string) int {
	if c == nil {
		return -1
	}
	for i, n := range c.GaugeNames() {
		if n == name {
			return i
		}
	}
	return -1
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mangle maps a dotted gauge name to an OpenMetrics-legal metric name.
func mangle(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
