// Package telemetry is the continuous system-state plane that complements
// vtrace's per-operation spans: a registry of virtual-time-sampled gauges
// answering "what was the system doing while that operation ran?" — per-die
// busy time, reclaim-unit occupancy, queue depths, dirty-page backlog,
// WAL-buffer fill, pooled-buffer in-flight counts.
//
// Sampling rides the simulation clock: each experiment cell owns a Cell
// whose probes are read by a self-rescheduling tick at a fixed virtual
// interval, so a dump is a pure function of the cell's seed — serial and
// parallel runs of the same experiment produce byte-identical dumps, and a
// dump is golden-testable like a trace.
//
// A nil *Registry hands out nil *Cells, and every Cell (and metrics.Gauge)
// method nil-checks and returns immediately: with telemetry off, every hot
// path pays one predictable branch and allocates nothing — the same
// contract as vtrace's nil *Tracer.
//
// Each Cell also keeps a flight recorder: a bounded ring of the most recent
// samples which, together with the tail of the cell's vtrace spans, is
// dumped as JSON when something goes wrong mid-run (an unrecovered device
// fault, a crash-consistency oracle violation, a panicking cell) — the
// last-seconds state trajectory that explains the failure.
package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

// DefaultInterval is the sampling tick used when a Registry is built with
// no explicit interval: fine enough to resolve snapshot-period transients
// at small scale, coarse enough to keep dumps compact.
const DefaultInterval = 2 * sim.Millisecond

// DefaultFlightDepth is how many trailing samples the flight ring keeps.
const DefaultFlightDepth = 128

// DefaultFlightSpans is how many trailing vtrace spans a flight dump
// includes (when the cell has a tracer attached).
const DefaultFlightSpans = 256

// Registry collects the telemetry cells of a multi-cell experiment. Cells
// may run concurrently (each with its own Cell), so the registry is the
// only locked structure in the package. A nil *Registry hands out nil
// Cells, which keeps telemetry a single `if` away from free everywhere.
type Registry struct {
	// FlightDir, when non-empty, is where flight-recorder dumps are
	// written (one flight-<label>.json per triggering cell). Empty
	// disables dumping to disk; the ring still records.
	FlightDir string

	interval sim.Duration
	mu       sync.Mutex
	cells    map[string]*Cell
}

// NewRegistry returns an empty registry sampling at the given virtual
// interval (DefaultInterval when non-positive).
func NewRegistry(interval sim.Duration) *Registry {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Registry{interval: interval}
}

// Interval reports the registry's sampling interval.
func (r *Registry) Interval() sim.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// Cell returns the cell for label, creating it on first use. A nil registry
// returns a nil cell. Concurrent cells must use distinct labels (the same
// rule as vtrace tracer labels): a shared label would share one unlocked
// Cell across engines.
func (r *Registry) Cell(label string) *Cell {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cells == nil {
		r.cells = make(map[string]*Cell)
	}
	c, ok := r.cells[label]
	if !ok {
		c = &Cell{label: label, interval: r.interval, reg: r, flightDepth: DefaultFlightDepth}
		r.cells[label] = c
	}
	return c
}

// Labels returns the registered cell labels in sorted order — the export
// order, independent of registration (and hence scheduling) order.
func (r *Registry) Labels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := make([]string, 0, len(r.cells))
	for label := range r.cells {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}

// Get returns the cell registered under label, or nil.
func (r *Registry) Get(label string) *Cell {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cells[label]
}

// flightSample is one flight-ring row: the tick time plus every gauge's
// value at that tick, in the cell's sorted-name order.
type flightSample struct {
	t sim.Time
	v []int64
}

// Cell is one experiment cell's telemetry: named gauges and histograms fed
// by probes that a virtual-time tick reads. Like a vtrace.Tracer it is
// unlocked — each cell runs on its own engine, which executes one process
// at a time. A nil *Cell is a no-op recorder.
type Cell struct {
	label    string
	interval sim.Duration
	reg      *Registry

	names  []string
	gauges map[string]*metrics.Gauge
	hists  map[string]*metrics.Histogram
	probes []func(now sim.Time)

	// tracer, when non-nil, contributes its trailing spans to flight dumps.
	tracer *vtrace.Tracer

	// started guards against double Start (e.g. a stack-level attach
	// followed by a cell-level attach).
	started bool
	stopped bool
	samples int64

	// Flight ring: fixed-capacity, overwritten circularly.
	flightDepth int
	flight      []flightSample
	flightNext  int
	sorted      []string
	dumped      bool
}

// Label reports the cell's label ("" for a nil cell).
func (c *Cell) Label() string {
	if c == nil {
		return ""
	}
	return c.label
}

// Interval reports the cell's sampling interval.
func (c *Cell) Interval() sim.Duration {
	if c == nil {
		return 0
	}
	return c.interval
}

// Samples reports how many ticks have run.
func (c *Cell) Samples() int64 {
	if c == nil {
		return 0
	}
	return c.samples
}

// Gauge returns the named gauge, creating it at the cell's interval on
// first use. A nil cell returns a nil gauge (whose methods are no-ops), so
// `cell.Gauge(name).Set(now, v)` is safe and allocation-free when off.
func (c *Cell) Gauge(name string) *metrics.Gauge {
	if c == nil {
		return nil
	}
	if c.gauges == nil {
		c.gauges = make(map[string]*metrics.Gauge)
	}
	g, ok := c.gauges[name]
	if !ok {
		g = metrics.NewGauge(c.interval)
		c.gauges[name] = g
		c.names = append(c.names, name)
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. The
// log-bucketed metrics.Histogram is duration-typed but generic over int64
// magnitudes; telemetry uses it for value distributions such as per-RU
// valid-page counts (one Record per RU per tick).
func (c *Cell) Histogram(name string) *metrics.Histogram {
	if c == nil {
		return nil
	}
	if c.hists == nil {
		c.hists = make(map[string]*metrics.Histogram)
	}
	h, ok := c.hists[name]
	if !ok {
		h = &metrics.Histogram{}
		c.hists[name] = h
	}
	return h
}

// AddProbe registers a sampling callback, run once per tick in registration
// order. Probes must only read simulation state and record into the cell;
// they run inside the engine's event loop and must not block.
func (c *Cell) AddProbe(fn func(now sim.Time)) {
	if c == nil {
		return
	}
	c.probes = append(c.probes, fn)
}

// SetTracer attaches the cell's vtrace tracer so flight dumps can include
// the trailing spans alongside the trailing samples.
func (c *Cell) SetTracer(t *vtrace.Tracer) {
	if c == nil {
		return
	}
	c.tracer = t
}

// GaugeNames returns the cell's gauge names in sorted order.
func (c *Cell) GaugeNames() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.names))
	copy(out, c.names)
	sort.Strings(out)
	return out
}

// HistNames returns the cell's histogram names in sorted order.
func (c *Cell) HistNames() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.hists))
	for name := range c.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Start schedules the sampling tick on eng: one sample at the current time,
// then one every interval until Stop (or until the engine is shut down).
// The tick is a plain timer callback — it reads state and reschedules, so
// attaching telemetry never changes any other process's event order, which
// is what keeps telemetered runs bit-identical to each other at any
// parallelism (the tick itself is deterministic: same interval, same
// probes, same engine).
func (c *Cell) Start(eng *sim.Engine) {
	if c == nil || c.started || len(c.probes) == 0 {
		return
	}
	c.started = true
	c.sorted = c.GaugeNames()
	var tick func()
	tick = func() {
		if c.stopped {
			return
		}
		c.Sample(eng.Now())
		eng.After(c.interval, tick)
	}
	eng.At(eng.Now(), tick)
}

// Stop ends the sampling loop: the next pending tick becomes a no-op and
// nothing is rescheduled. Harness code calls it when the driven workload
// completes so the trailing timer does not keep the event queue alive.
func (c *Cell) Stop() {
	if c == nil {
		return
	}
	c.stopped = true
}

// Sample runs every probe at virtual time now and appends a flight-ring
// row. Start's tick calls it; tests may call it directly.
func (c *Cell) Sample(now sim.Time) {
	if c == nil {
		return
	}
	for _, fn := range c.probes {
		fn(now)
	}
	c.samples++
	if c.sorted == nil {
		c.sorted = c.GaugeNames()
	}
	row := flightSample{t: now, v: make([]int64, len(c.sorted))}
	for i, name := range c.sorted {
		row.v[i] = c.gauges[name].Last()
	}
	if c.flightDepth <= 0 {
		c.flightDepth = DefaultFlightDepth
	}
	if len(c.flight) < c.flightDepth {
		c.flight = append(c.flight, row)
	} else {
		c.flight[c.flightNext] = row
		c.flightNext = (c.flightNext + 1) % c.flightDepth
	}
}

// flightRows returns the ring contents oldest-first.
func (c *Cell) flightRows() []flightSample {
	if len(c.flight) < c.flightDepth {
		return c.flight
	}
	out := make([]flightSample, 0, len(c.flight))
	out = append(out, c.flight[c.flightNext:]...)
	out = append(out, c.flight[:c.flightNext]...)
	return out
}

// FlightDumped reports whether this cell has written a flight dump.
func (c *Cell) FlightDumped() bool {
	if c == nil {
		return false
	}
	return c.dumped
}

// DumpFlight writes the flight record (reason, trailing samples, trailing
// spans) as JSON into the registry's FlightDir, returning the file path.
// It is a no-op returning "" when the cell is nil, no FlightDir is
// configured, or this cell already dumped (the first failure wins — later
// cascading errors would overwrite the interesting state).
func (c *Cell) DumpFlight(reason string) (string, error) {
	if c == nil || c.reg == nil || c.reg.FlightDir == "" || c.dumped {
		return "", nil
	}
	c.dumped = true
	if err := os.MkdirAll(c.reg.FlightDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(c.reg.FlightDir, "flight-"+SanitizeLabel(c.label)+".json")
	data, err := c.EncodeFlight(reason)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// SanitizeLabel maps a cell label to a filesystem-safe name: path
// separators and whitespace become '_'.
func SanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ', '\t', ':':
			return '_'
		}
		return r
	}, label)
}

// Err aggregates per-gauge drop errors for the cell (nil when clean).
func (c *Cell) Err() error {
	if c == nil {
		return nil
	}
	for _, name := range c.GaugeNames() {
		if _, err := c.gauges[name].Errors(); err != nil {
			return fmt.Errorf("telemetry: %s: gauge %s: %w", c.label, name, err)
		}
	}
	return nil
}
