// Package slimio is the public face of the SlimIO reproduction: a
// lightweight persistence I/O path for in-memory databases (io_uring
// passthru onto raw LBA space of an FDP SSD, with per-lifetime placement
// identifiers), together with the complete simulated substrate it runs on —
// NAND array, FDP and conventional FTLs, kernel I/O path, io_uring rings,
// a Redis-like engine, workloads, and the experiment harness that
// regenerates every table and figure of the paper.
//
// Everything executes inside a deterministic discrete-event simulation
// (virtual time, seeded randomness); see DESIGN.md for the modelling
// decisions and EXPERIMENTS.md for paper-vs-measured results.
//
// The quickest way in:
//
//	sys, _ := slimio.NewSystem(slimio.SystemConfig{DeviceBytes: 64 << 20})
//	sys.Sim.Spawn("client", func(env *slimio.Env) {
//		_ = sys.DB.Set(env, "key", []byte("value"))
//		sys.DB.TriggerSnapshot(slimio.OnDemandSnapshot)
//		sys.DB.Shutdown(env)
//	})
//	sys.Sim.Run()
//
// For experiments, use the exp harness re-exported here (RunTable3,
// RunFigure5, ...) or the cmd/slimio-bench CLI.
package slimio

import (
	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/workload"
)

// Simulation kernel.
type (
	// Sim is the discrete-event engine all components run on.
	Sim = sim.Engine
	// Env is a simulation process's handle (passed to process bodies).
	Env = sim.Env
	// Duration is virtual time; see Millisecond/Second constants.
	Duration = sim.Duration
	// Time is an absolute virtual timestamp.
	Time = sim.Time
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Device layer.
type (
	// Geometry describes the simulated NAND array.
	Geometry = nand.Geometry
	// Device is the NVMe-style front-end.
	Device = ssd.Device
	// FDPConfig tunes the FDP flash translation layer.
	FDPConfig = fdp.Config
)

// Database engine and SlimIO backend.
type (
	// DB is the Redis-like in-memory database engine.
	DB = imdb.Engine
	// DBConfig tunes the engine (logging policy, WAL-snapshot trigger...).
	DBConfig = imdb.Config
	// Backend is SlimIO: the passthru persistence backend.
	Backend = core.Backend
	// BackendConfig tunes SlimIO's LBA layout and rings.
	BackendConfig = core.Config
	// SnapshotKind selects WAL-Snapshot vs On-Demand-Snapshot.
	SnapshotKind = imdb.SnapshotKind
	// LogPolicy selects Periodical-Log vs Always-Log.
	LogPolicy = imdb.LogPolicy
	// WorkloadConfig describes a benchmark driver.
	WorkloadConfig = workload.Config
)

// Re-exported enum values.
const (
	WALSnapshot      = imdb.WALSnapshot
	OnDemandSnapshot = imdb.OnDemandSnapshot
	PeriodicalLog    = imdb.PeriodicalLog
	AlwaysLog        = imdb.AlwaysLog
)

// Experiment harness (regenerates the paper's evaluation).
type (
	// Scale sizes an experiment.
	Scale = exp.Scale
	// CellConfig describes one measured configuration.
	CellConfig = exp.CellConfig
	// CellResult is its outcome.
	CellResult = exp.CellResult
	// BackendKind selects a full storage stack.
	BackendKind = exp.BackendKind
)

// Harness entry points.
var (
	SmallScale = exp.SmallScale
	TinyScale  = exp.TinyScale
	PaperScale = exp.PaperScale
	RunCell    = exp.RunCell
	RunTable1  = exp.RunTable1
	RunTable2  = exp.RunTable2
	RunTable3  = exp.RunTable3
	RunTable4  = exp.RunTable4
	RunTable5  = exp.RunTable5
	RunFigure2 = exp.RunFigure2
	RunFigure4 = exp.RunFigure4
	RunFigure5 = exp.RunFigure5

	// RedisBench and YCSBA build the paper's two workloads.
	RedisBench = workload.RedisBench
	YCSBA      = workload.YCSBA
)

// SystemConfig sizes a ready-to-use SlimIO system.
type SystemConfig struct {
	// DeviceBytes is the simulated FDP SSD capacity (default 64 MiB).
	DeviceBytes int64
	// DB tunes the database engine.
	DB DBConfig
	// Backend tunes SlimIO's layout; zero values pick sensible defaults.
	Backend BackendConfig
}

// System bundles an assembled stack: simulation engine, FDP device, SlimIO
// backend, and a started database engine.
type System struct {
	Sim     *Sim
	Device  *Device
	Backend *Backend
	DB      *DB
}

// NewSystem assembles the full SlimIO stack on a fresh simulated FDP SSD
// and starts the database engine. Drive it by spawning client processes on
// sys.Sim and then calling sys.Sim.Run().
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.DeviceBytes <= 0 {
		cfg.DeviceBytes = 64 << 20
	}
	arr, err := nand.New(nand.DefaultGeometry(cfg.DeviceBytes), nand.DefaultLatencies())
	if err != nil {
		return nil, err
	}
	ftl, err := fdp.New(arr, fdp.Config{})
	if err != nil {
		return nil, err
	}
	dev := ssd.New(ftl, ssd.Config{})
	eng := sim.NewEngine()
	arr.SetClock(eng)
	be, err := core.New(eng, dev, cfg.Backend)
	if err != nil {
		return nil, err
	}
	cfg.DB.Pool = arr.Pool()
	db := imdb.New(eng, be, cfg.DB, nil)
	db.Start()
	return &System{Sim: eng, Device: dev, Backend: be, DB: db}, nil
}
