// Command slimio-check runs the crash-consistency model checker
// (internal/crashmc) against one or both persistence backends: it
// enumerates the crash-point lattice of a seeded workload, replays a
// power cut at each selected point, recovers, and judges the result with
// the durability oracle. On violation it shrinks the schedule to a
// smallest failing one and writes a repro file that -repro replays
// bit-identically.
//
// Usage:
//
//	slimio-check                                  # full lattice, both backends
//	slimio-check -backend slimio -budget 48       # CI-sized stride sample
//	slimio-check -repro slimio-check-repro.json   # replay a written repro
//	slimio-check -mutate                          # self-test: the checker must
//	                                              # catch an injected ack bug
//
// Exit status: 0 when every checked cut satisfies the oracle (or the
// repro/mutation behaves as expected), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/slimio/slimio/internal/crashmc"
	"github.com/slimio/slimio/internal/metrics"
)

func main() {
	var (
		backend = flag.String("backend", "both", "backend to check: slimio, baseline, or both")
		seed    = flag.Int64("seed", 1, "workload seed")
		ops     = flag.Int("ops", crashmc.DefaultOps, "workload length in client operations")
		budget  = flag.Int("budget", 0, "max cuts to replay per backend (0 = the whole lattice)")
		out     = flag.String("out", "slimio-check-repro.json", "where to write the shrunk repro on violation")
		repro   = flag.String("repro", "", "replay this repro file instead of checking")
		mutate  = flag.Bool("mutate", false, "self-test: inject an ack-without-sync bug and require the checker to catch it")
		flight  = flag.String("flight", "", "record telemetry on every replay and dump a flight-recorder JSON into this directory when a cut violates the oracle")
	)
	flag.Parse()

	if *repro != "" {
		os.Exit(replayRepro(*repro))
	}

	var targets []crashmc.Target
	if *backend == "both" {
		targets = crashmc.Targets
	} else {
		tgt, err := crashmc.ParseTarget(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets = []crashmc.Target{tgt}
	}

	w := crashmc.Workload{Seed: *seed, Ops: *ops}
	if *mutate {
		w.Mutation = crashmc.MutAckOnAppend
	}
	ctr := &metrics.Counter{}
	status := 0
	for _, tgt := range targets {
		res, err := crashmc.Check(crashmc.Config{
			Target:      tgt,
			Workload:    w,
			Budget:      *budget,
			StopAtFirst: *mutate,
			Metrics:     ctr,
			FlightDir:   *flight,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: lattice %d crash points over %v, %d cuts replayed, %d violations\n",
			tgt, res.LatticeSize, res.End, res.CutsChecked, len(res.Violations))
		for i := range res.Violations {
			fmt.Printf("  VIOLATION %v\n", &res.Violations[i])
		}
		if *mutate {
			if mutationCaught(tgt, w, res, *out) != 0 {
				status = 1
			}
			continue
		}
		if len(res.Violations) > 0 {
			status = 1
			if err := writeRepro(tgt, w, res.Violations[0], *out); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	printCounters(ctr)
	os.Exit(status)
}

// writeRepro shrinks the first violation's schedule and serializes it.
func writeRepro(tgt crashmc.Target, w crashmc.Workload, v crashmc.Violation, path string) error {
	shrunk, sv, err := crashmc.Shrink(tgt, w, v.Cut)
	if err != nil {
		return fmt.Errorf("shrink: %w", err)
	}
	data, err := crashmc.NewRepro(tgt, shrunk, v.Cut, *sv).Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  shrunk %d ops -> %d, repro written to %s\n", w.Ops, shrunk.Ops, path)
	return nil
}

// replayRepro re-runs a repro file and demands the identical violation.
func replayRepro(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	r, err := crashmc.DecodeRepro(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	got, err := r.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	switch {
	case got == nil:
		fmt.Printf("%s: repro no longer fails the oracle (expected %v)\n", r.Target, &r.Violation)
		return 1
	case *got != r.Violation:
		fmt.Printf("%s: repro fails differently:\n want %v\n  got %v\n", r.Target, &r.Violation, got)
		return 1
	}
	fmt.Printf("%s: violation confirmed bit-identically: %v\n", r.Target, got)
	return 0
}

// mutationCaught verifies the self-test: the injected bug must surface as
// an acked-lost violation, shrink, replay bit-identically, and leave its
// repro at out for a -repro round trip.
func mutationCaught(tgt crashmc.Target, w crashmc.Workload, res *crashmc.Result, out string) int {
	if len(res.Violations) == 0 {
		fmt.Printf("  SELF-TEST FAILED: injected ack-without-sync bug not caught\n")
		return 1
	}
	v := res.Violations[0]
	shrunk, sv, err := crashmc.Shrink(tgt, w, v.Cut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data, err := crashmc.NewRepro(tgt, shrunk, v.Cut, *sv).Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	r, err := crashmc.DecodeRepro(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	got, err := r.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if got == nil || *got != r.Violation {
		fmt.Printf("  SELF-TEST FAILED: shrunk repro did not replay bit-identically\n")
		return 1
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("  self-test ok: caught as %s, shrunk %d ops -> %d, repro replays bit-identically (written to %s)\n",
		v.Code, w.Ops, shrunk.Ops, out)
	return 0
}

// printCounters dumps the aggregate fault and checker counters in the same
// sorted format slimio-bench uses. Silent when nothing was counted.
func printCounters(ctr *metrics.Counter) {
	kvs := ctr.Sorted()
	if len(kvs) == 0 {
		return
	}
	fmt.Println("Fault & checker counters (all backends):")
	for _, kv := range kvs {
		fmt.Printf("  %-24s %d\n", kv.Key, kv.Value)
	}
}
