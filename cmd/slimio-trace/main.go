// Command slimio-trace emits the runtime-RPS timelines of Figures 4 and 5
// as CSV (one file per system, or stdout), ready for plotting.
//
// Usage:
//
//	slimio-trace -fig 4                 # baseline + slimio-noFDP under GC
//	slimio-trace -fig 5                 # baseline + slimio-fdp
//	slimio-trace -fig 4 -out results/   # write CSV files instead of stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

func main() {
	var (
		fig    = flag.Int("fig", 4, "figure to regenerate: 4 or 5")
		scale  = flag.String("scale", "small", "scale preset: tiny or small")
		outDir = flag.String("out", "", "directory for CSV output (default: stdout)")
		window = exp.SimDurationFlag("window", 3*sim.Second, "virtual observation window")
		attrib = flag.Bool("attrib", false, "trace the run and print per-layer latency attribution per system")

		parallel   = flag.Int("parallel", 0, "timeline cells run concurrently (0 = GOMAXPROCS, 1 = serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sc := exp.SmallScale()
	if *scale == "tiny" {
		sc = exp.TinyScale()
	}
	sc.Parallel = *parallel
	if *attrib {
		sc.Trace = vtrace.NewRegistry()
	}
	w := *window

	var base, slim *exp.TimelineResult
	var err error
	switch *fig {
	case 4:
		base, slim, err = exp.RunFigure4(sc, w)
	case 5:
		base, slim, err = exp.RunFigure5(sc, w)
	default:
		fmt.Fprintln(os.Stderr, "figure must be 4 or 5")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	emit := func(tr *exp.TimelineResult) {
		csv := tr.Series.CSV()
		if *outDir == "" {
			fmt.Printf("# figure %d: %s (WAF %.2f, %d GC runs)\n%s\n", *fig, tr.Kind, tr.WAF, tr.GCRuns, csv)
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("fig%d-%s.csv", *fig, tr.Kind))
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (WAF %.2f, %d GC runs)\n", path, tr.WAF, tr.GCRuns)
	}
	emit(base)
	emit(slim)

	if *attrib {
		for _, tr := range []*exp.TimelineResult{base, slim} {
			fmt.Printf("\nLatency attribution — %s:\n", tr.Kind)
			fmt.Print(vtrace.Compute(tr.Trace).Format())
		}
	}
}
