// The `go vet -vettool` protocol: the go command invokes the tool once per
// compilation unit with a JSON config file describing the unit (sources,
// export-data files for every dependency, fact-file plumbing). This file
// reimplements the subset of x/tools' unitchecker that slimio-vet needs —
// the suite defines no cross-package facts, so the fact files are empty
// placeholders written only to satisfy the protocol.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/slimio/slimio/internal/analysis/load"
	"github.com/slimio/slimio/internal/analysis/suite"
)

// vetConfig mirrors the fields of the go command's vet config JSON that the
// suite consumes (the full struct is internal to cmd/go; unknown fields are
// ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheckerMain(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}

	// The protocol requires a fact file even from fact-free tools.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}

	// Dependencies are analyzed only for facts (we have none), and test
	// variants (ID "p [p.test]", the generated p.test main, p_test) are out
	// of contract: tests may use wall clocks and goroutines freely.
	if cfg.VetxOnly || strings.Contains(cfg.ID, " [") ||
		strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return base.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(err)
	}

	findings, err := suite.RunPackage(&load.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	})
	if err != nil {
		fatal(err)
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slimio-vet:", err)
	os.Exit(1)
}

// versionFlag implements the -V=full handshake go vet uses to fingerprint
// vet tools for build caching, in the same output format as x/tools'
// unitchecker: "<executable> version devel comments-go-here buildID=<sha256>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
