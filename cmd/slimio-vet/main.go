// Command slimio-vet enforces the repository's determinism contract with a
// suite of custom static-analysis passes (see DESIGN.md "Determinism
// contract" and `slimio-vet -list`).
//
// Standalone usage:
//
//	slimio-vet ./...              # lint packages, exit 1 on findings
//	slimio-vet -json ./...        # machine-readable findings
//	slimio-vet -list              # one-line summary of every pass
//	slimio-vet -explain maporder  # a pass's full rationale
//
// The binary also speaks the `go vet -vettool` protocol (-V=full, -flags,
// and single *.cfg arguments), so it can run inside the build cache:
//
//	go vet -vettool=$(go env GOPATH)/bin/slimio-vet ./...
//
// Suppress an intentional violation with a trailing or preceding comment:
//
//	//slimio:allow <pass> <reason>
//
// The reason is mandatory; malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/load"
	"github.com/slimio/slimio/internal/analysis/suite"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as JSON on stdout")
		sarifOut  = flag.String("sarif", "", "also write findings as SARIF 2.1.0 to the named file")
		explain   = flag.String("explain", "", "print the named pass's rationale and exit (\"all\" for every pass)")
		list      = flag.Bool("list", false, "list passes with one-line summaries and exit")
		flagsMode = flag.Bool("flags", false, "describe flags in JSON (go vet protocol)")
	)
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Parse()

	if *flagsMode {
		// We expose no flags that alter analysis results to go vet.
		fmt.Println("[]")
		return
	}
	if *list {
		for _, sa := range suite.All {
			fmt.Printf("%-14s %s\n", sa.Name, strings.SplitN(sa.Doc, "\n", 2)[0])
		}
		return
	}
	if *explain != "" {
		if err := printExplain(*explain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool`.
		unitcheckerMain(args[0])
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	findings, err := runStandalone(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimio-vet:", err)
		os.Exit(2)
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "slimio-vet:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		out := struct {
			Findings []analysis.Finding `json:"findings"`
			Count    int                `json:"count"`
		}{Findings: findings, Count: len(findings)}
		if out.Findings == nil {
			out.Findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "slimio-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "slimio-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func runStandalone(patterns []string) ([]analysis.Finding, error) {
	pkgs, err := load.Load("", patterns...)
	if err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()
	var all []analysis.Finding
	for _, pkg := range pkgs {
		findings, err := suite.RunPackage(pkg)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkg.ImportPath, err)
		}
		for i := range findings {
			findings[i].File = relPath(cwd, findings[i].File)
		}
		all = append(all, findings...)
	}
	// Re-sort the aggregate: per-package order is deterministic, but files
	// shared across test variants (and relativized paths) must land in one
	// global order so two runs emit byte-identical output.
	suite.SortFindings(all)
	return all, nil
}

func relPath(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func printExplain(name string) error {
	if name == "all" {
		for i, sa := range suite.All {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("# %s\n\n%s\n", sa.Name, sa.Doc)
		}
		return nil
	}
	a := suite.Lookup(name)
	if a == nil {
		return fmt.Errorf("unknown pass %q (known: %s)", name, strings.Join(suite.Names(), ", "))
	}
	fmt.Printf("# %s\n\n%s\n", a.Name, a.Doc)
	return nil
}
