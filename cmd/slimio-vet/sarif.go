// SARIF 2.1.0 export: the minimal, stable subset CI annotation tooling
// consumes. One run, one driver, one rule per suite pass (plus the "allow"
// pseudo-pass for malformed suppressions), one result per finding. Output
// is deterministic: rules are emitted in sorted name order and results in
// the suite's canonical finding order, so the SARIF artifact is as
// byte-reproducible as the text output.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/suite"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// buildSARIF assembles the log for a finding list (already in canonical
// order — writeSARIF does not re-sort).
func buildSARIF(findings []analysis.Finding) sarifLog {
	rules := make([]sarifRule, 0, len(suite.All)+1)
	rules = append(rules, sarifRule{
		ID:               "allow",
		ShortDescription: sarifMessage{Text: "malformed //slimio:allow suppression directive"},
	})
	for _, name := range suite.Names() {
		a := suite.Lookup(name)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: strings.SplitN(a.Doc, "\n", 2)[0]},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "slimio-vet",
				InformationURI: "https://github.com/slimio/slimio",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

func writeSARIF(path string, findings []analysis.Finding) error {
	data, err := json.MarshalIndent(buildSARIF(findings), "", "  ")
	if err != nil {
		return fmt.Errorf("encoding SARIF: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing SARIF: %v", err)
	}
	return nil
}
