package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/slimio/slimio/internal/analysis"
)

// detFixture is a package written to trip several passes at once; it lives
// under internal/exp so the suite's scoping applies every data-plane pass
// (including refflow) to it.
const detFixture = "../../internal/exp/testdata/src/det"

func runOnce(t *testing.T) []analysis.Finding {
	t.Helper()
	findings, err := runStandalone([]string{detFixture})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("determinism fixture produced no findings")
	}
	return findings
}

func render(findings []analysis.Finding) []byte {
	var buf bytes.Buffer
	for _, f := range findings {
		fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	return buf.Bytes()
}

// TestOutputDeterministic runs the whole suite twice — fresh load, fresh
// type-check, fresh passes — and requires byte-identical rendered output.
func TestOutputDeterministic(t *testing.T) {
	first := render(runOnce(t))
	second := render(runOnce(t))
	if !bytes.Equal(first, second) {
		t.Errorf("two suite runs rendered differently:\nrun 1:\n%srun 2:\n%s", first, second)
	}
}

// TestFindingsGloballyOrdered checks the driver's contract directly: the
// aggregate is ordered by (file, offset, pass, message) and spans more
// than one pass on this fixture.
func TestFindingsGloballyOrdered(t *testing.T) {
	findings := runOnce(t)
	passes := map[string]bool{}
	for i, f := range findings {
		passes[f.Analyzer] = true
		if i == 0 {
			continue
		}
		p := findings[i-1]
		after := p.File < f.File ||
			(p.File == f.File && (p.Offset < f.Offset ||
				(p.Offset == f.Offset && (p.Analyzer < f.Analyzer ||
					(p.Analyzer == f.Analyzer && p.Message <= f.Message)))))
		if !after {
			t.Errorf("findings[%d] out of order: %v then %v", i, p, f)
		}
	}
	if len(passes) < 3 {
		t.Errorf("fixture tripped only %d passes, want >= 3 to exercise ordering", len(passes))
	}
}

// TestSARIFMinimalSchema writes the fixture findings as SARIF and checks
// the document against the minimal schema CI tooling relies on.
func TestSARIFMinimalSchema(t *testing.T) {
	findings := runOnce(t)
	path := filepath.Join(t.TempDir(), "out.sarif")
	if err := writeSARIF(path, findings); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Schema == "" || log.Version != "2.1.0" {
		t.Errorf("bad $schema/version: %q / %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "slimio-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription.text", r)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(findings))
	}
	for i, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d ruleId %q not declared in driver rules", i, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %d missing level/message: %+v", i, r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result %d has incomplete location: %+v", i, loc)
		}
	}

	// The artifact must be as reproducible as the text output.
	again := filepath.Join(t.TempDir(), "again.sarif")
	if err := writeSARIF(again, runOnce(t)); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("two SARIF exports of the same fixture differ byte-for-byte")
	}
}
