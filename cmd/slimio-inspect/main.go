// Command slimio-inspect runs a short SlimIO scenario and dumps the
// resulting device and backend state: LBA layout, snapshot slot roles,
// reclaim-unit occupancy, per-PID write volumes, and the GC/reclaim log —
// the observability a storage engineer would want from the real system.
//
// Usage:
//
//	slimio-inspect                  # SlimIO on FDP, tiny scenario
//	slimio-inspect -kind slimio-noFDP
//	slimio-inspect -scale small -ops 30000
//	slimio-inspect -spans           # also trace the run and print the
//	                                # span summary + latency attribution
//	slimio-inspect -validate t.json # check a trace-event file and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/workload"
)

func main() {
	var (
		kindName = flag.String("kind", "slimio-fdp", "stack: slimio-fdp or slimio-noFDP")
		scale    = flag.String("scale", "tiny", "scale preset: tiny or small")
		ops      = flag.Int64("ops", 0, "override operations")
		spans    = flag.Bool("spans", false, "trace the run; print span counts and latency attribution")
		validate = flag.String("validate", "", "validate a Chrome trace-event JSON file and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := vtrace.ValidateTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *validate, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid trace-event JSON (%d bytes)\n", *validate, len(data))
		return
	}

	sc := exp.TinyScale()
	if *scale == "small" {
		sc = exp.SmallScale()
	}
	if *ops > 0 {
		sc.OpsPerRep = *ops
	}
	kind := exp.SlimIOFDP
	if *kindName == "slimio-noFDP" {
		kind = exp.SlimIOConv
	}
	if *spans {
		sc.Trace = vtrace.NewRegistry()
	}

	res, err := exp.RunCell(exp.CellConfig{
		Kind:           kind,
		Policy:         imdb.PeriodicalLog,
		Scale:          sc,
		Workload:       workload.RedisBench(0, sc.KeyRange),
		OnDemandPerRep: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("== run ==\n")
	fmt.Printf("stack          %s (%s)\n", kind, sc.Name)
	fmt.Printf("duration       %v (virtual)\n", res.Duration)
	fmt.Printf("avg RPS        %.0f\n", res.AvgRPS)
	fmt.Printf("snapshots      %d (mean %v)\n", len(res.Snapshots), res.MeanSnapshotTime)
	fmt.Printf("SET p99.9      %v\n", res.SetP999)

	slim := res.Stack.Slim
	fmt.Printf("\n== SlimIO backend ==\n")
	st := slim.Stats()
	fmt.Printf("WAL page writes     %d (+%d tail rewrites)\n", st.WALPageWrites, st.WALTailRewrites)
	fmt.Printf("snapshot pages      %d\n", st.SnapshotPageWrites)
	fmt.Printf("metadata writes     %d\n", st.MetadataWrites)
	fmt.Printf("promotions          %d\n", st.Promotions)
	fmt.Printf("WAL resets          %d\n", st.WALResets)
	fmt.Printf("deallocated pages   %d\n", st.DeallocatedPages)
	fmt.Printf("\nsnapshot slots:\n")
	for _, s := range slim.Slots() {
		fmt.Printf("  slot %d  %-13s start=%-8d pages=%-7d used=%d bytes\n",
			s.Index, s.Role, s.Start, s.Pages, s.Used)
	}

	dev := res.Stack.Dev
	d := dev.Stats()
	fmt.Printf("\n== device ==\n")
	fmt.Printf("host writes    %d pages\n", d.HostWritePages)
	fmt.Printf("nand writes    %d pages\n", d.NANDWritePages)
	fmt.Printf("GC copies      %d pages\n", d.GCCopiedPages)
	fmt.Printf("GC runs        %d (busy %v)\n", d.GCRuns, d.GCBusy)
	fmt.Printf("WAF            %.4f\n", d.WAF())

	switch f := dev.FTL().(type) {
	case *fdp.FTL:
		printFDP(f.Stats(), f)
		printWear(f.Array().Wear())
	case *fdp.Conventional:
		fmt.Printf("\n== conventional FTL (line-based, single stream) ==\n")
		printUsage(f.Usage())
		printWear(f.Array().Wear())
	}

	if *spans {
		printSpans(res.Trace)
	}
}

// printSpans summarizes the run's trace: span/event volume per layer and
// the per-layer latency attribution report.
func printSpans(tr *vtrace.Tracer) {
	fmt.Printf("\n== spans ==\n")
	if tr == nil {
		fmt.Println("(no tracer)")
		return
	}
	perLayer := map[string]int{}
	for _, s := range tr.Spans() {
		perLayer[s.Layer]++
	}
	fmt.Printf("spans %d, instants %d, dropped %d\n", len(tr.Spans()), len(tr.Events()), tr.Dropped())
	for _, kv := range sortedCounts(perLayer) {
		fmt.Printf("  %-10s %d\n", kv.layer, kv.n)
	}
	fmt.Printf("\nLatency attribution:\n")
	fmt.Print(vtrace.Compute(tr).Format())
}

type layerCount struct {
	layer string
	n     int
}

func sortedCounts(m map[string]int) []layerCount {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]layerCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, layerCount{k, m[k]})
	}
	return out
}

func printWear(w nand.WearStats) {
	fmt.Printf("\n== wear ==\n")
	fmt.Printf("block erases   min=%d max=%d mean=%.2f total=%d\n",
		w.MinErases, w.MaxErases, w.MeanErases, w.TotalErases)
}

func printFDP(st fdp.Stats, f *fdp.FTL) {
	fmt.Printf("\n== FDP FTL ==\n")
	fmt.Printf("RUs reclaimed  %d (%d without any copy)\n", st.RUsReclaimed, st.RUsReclaimedEmpty)
	fmt.Printf("writes by PID:\n")
	for _, pc := range st.PIDWrites() {
		if pc.HostWrites > 0 || pc.GCCopies > 0 {
			fmt.Printf("  PID %d: %d pages (%d GC copies)\n", pc.PID, pc.HostWrites, pc.GCCopies)
		}
	}
	printUsage(f.Usage())
}

func printUsage(usage []fdp.RUUsage) {
	var free, open, closed int
	for _, u := range usage {
		switch u.State {
		case "free":
			free++
		case "open":
			open++
		default:
			closed++
		}
	}
	fmt.Printf("reclaim units: %d free, %d open, %d closed\n", free, open, closed)
	fmt.Printf("non-free units (valid/total pages):\n")
	for _, u := range usage {
		if u.State == "free" {
			continue
		}
		fmt.Printf("  RU %3d %-6s pid=%d %5d/%d\n", u.ID, u.State, u.PID, u.Valid, u.Total)
	}
}
