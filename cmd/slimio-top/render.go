package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/slimio/slimio/internal/telemetry"
)

// column is one dashboard column: a header and how to read it from a sample
// row. Columns whose gauges a cell does not export render as "-" — the
// kernel path has no rings, the SlimIO path has no dirty pages, and the
// dashboard shows both side by side.
type column struct {
	header string
	// value returns the rendered cell for sample row k, or "" when the
	// backing gauges are absent.
	value func(v *cellView, k int) string
}

// cellView pre-resolves the column indices of one cell so row rendering is
// a flat array walk.
type cellView struct {
	c   *telemetry.CellDump
	idx map[string]int
}

func newCellView(c *telemetry.CellDump) *cellView {
	v := &cellView{c: c, idx: make(map[string]int, len(c.Names))}
	for i, n := range c.Names {
		v.idx[n] = i
	}
	return v
}

// at returns gauge name's value at sample row k.
func (v *cellView) at(name string, k int) (int64, bool) {
	i, ok := v.idx[name]
	if !ok || k < 0 || k >= len(v.c.Samples) {
		return 0, false
	}
	return v.c.Samples[k].V[i], true
}

// gaugeCol renders one gauge verbatim.
func gaugeCol(header, name string) column {
	return column{header: header, value: func(v *cellView, k int) string {
		n, ok := v.at(name, k)
		if !ok {
			return ""
		}
		return fmt.Sprintf("%d", n)
	}}
}

// bytesCol renders one byte-valued gauge human-readably (KiB/MiB).
func bytesCol(header, name string) column {
	return column{header: header, value: func(v *cellView, k int) string {
		n, ok := v.at(name, k)
		if !ok {
			return ""
		}
		return fmtBytes(n)
	}}
}

// wafCol computes the live write-amplification factor at row k from the
// cumulative FTL page counters, in integer hundredths (1.00 when the device
// has not written yet).
func wafCol() column {
	return column{header: "waf", value: func(v *cellView, k int) string {
		host, ok1 := v.at("ftl.host_write_pages", k)
		nand, ok2 := v.at("ftl.nand_write_pages", k)
		if !ok1 || !ok2 {
			return ""
		}
		x100 := int64(100)
		if host > 0 {
			x100 = (nand*100 + host/2) / host
		}
		return fmt.Sprintf("%d.%02d", x100/100, x100%100)
	}}
}

// tenantsCol renders the tenant count of multi-tenant cells.
func tenantsCol() column {
	return column{header: "tens", value: func(v *cellView, k int) string {
		n, ok := v.at("tenant.count", k)
		if !ok {
			return ""
		}
		return fmt.Sprintf("%d", n)
	}}
}

// tenantWAFCol renders the worst per-tenant WAF of a multi-tenant cell, from
// the tenant<i>.waf_x100 gauges (indexed lookups over a bounded loop, so the
// scan is deterministic regardless of how many tenants the cell mounts).
func tenantWAFCol() column {
	return column{header: "twaf", value: func(v *cellView, k int) string {
		count, ok := v.at("tenant.count", k)
		if !ok || count <= 0 {
			return ""
		}
		worst := int64(0)
		for i := int64(0); i < count; i++ {
			x100, ok := v.at(fmt.Sprintf("tenant%d.waf_x100", i), k)
			if ok && x100 > worst {
				worst = x100
			}
		}
		return fmt.Sprintf("%d.%02d", worst/100, worst%100)
	}}
}

// dashboard is the column set of both render modes, in display order.
var dashboard = []column{
	wafCol(),
	tenantsCol(),
	tenantWAFCol(),
	gaugeCol("gc_cp", "ftl.gc_copied_pages"),
	gaugeCol("rus", "fdp.free_rus"),
	gaugeCol("dirty", "kernelio.dirty_pages"),
	gaugeCol("wb_q", "kernelio.wb_inflight"),
	gaugeCol("sq", "uring.wal.sq_depth"),
	gaugeCol("cq", "uring.wal.cq_depth"),
	gaugeCol("pool", "bufpool.inflight"),
	bytesCol("walbuf", "imdb.wal_buf_bytes"),
	bytesCol("mem", "imdb.memory_bytes"),
}

// renderTables prints each cell as a plain-text table of evenly spaced
// sample rows — integer arithmetic and stable formatting only, so CI can
// diff the output.
func renderTables(w io.Writer, intervalNS int64, cells []telemetry.CellDump, maxRows int) {
	for i := range cells {
		c := &cells[i]
		v := newCellView(c)
		fmt.Fprintf(w, "cell %s  (interval %s, %d samples, %d gauges)\n",
			c.Label, fmtNS(intervalNS), len(c.Samples), len(c.Names))
		fmt.Fprintf(w, "%10s", "t")
		for _, col := range dashboard {
			fmt.Fprintf(w, " %8s", col.header)
		}
		fmt.Fprintln(w)
		for _, k := range spacedRows(len(c.Samples), maxRows) {
			fmt.Fprintf(w, "%10s", fmtNS(int64(c.Samples[k].T)))
			for _, col := range dashboard {
				s := col.value(v, k)
				if s == "" {
					s = "-"
				}
				fmt.Fprintf(w, " %8s", s)
			}
			fmt.Fprintln(w)
		}
		for _, h := range c.Hists {
			fmt.Fprintf(w, "  hist %-24s n=%d min=%d p50=%d p90=%d p99=%d max=%d\n",
				h.Name, h.Count, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
		fmt.Fprintln(w)
	}
}

// renderLive animates the same rows in place: one frame per tick, every
// cell a line, redrawn with ANSI cursor-home. Wall-clock pacing is the
// point here — this is the human mode, exempt from the determinism rules
// that govern table mode.
func renderLive(intervalNS int64, cells []telemetry.CellDump, refresh time.Duration) {
	views := make([]*cellView, len(cells))
	ticks := 0
	for i := range cells {
		views[i] = newCellView(&cells[i])
		if n := len(cells[i].Samples); n > ticks {
			ticks = n
		}
	}
	for k := 0; k < ticks; k++ {
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("slimio-top  t=%s  (tick %d/%d)\n\n", fmtNS(int64(k)*intervalNS), k+1, ticks)
		fmt.Printf("%-32s", "cell")
		for _, col := range dashboard {
			fmt.Printf(" %8s", col.header)
		}
		fmt.Println()
		for i := range cells {
			c := &cells[i]
			row := k
			if row >= len(c.Samples) {
				row = len(c.Samples) - 1 // shorter cell: hold its final state
			}
			fmt.Printf("%-32s", c.Label)
			for _, col := range dashboard {
				s := ""
				if row >= 0 {
					s = col.value(views[i], row)
				}
				if s == "" {
					s = "-"
				}
				fmt.Printf(" %8s", s)
			}
			fmt.Println()
		}
		time.Sleep(refresh) //slimio:allow wallclock live dashboard pacing is the feature, not simulation state
	}
	fmt.Fprintln(os.Stdout)
}

// spacedRows picks up to maxRows indices of n, evenly spaced, always
// including the first and last sample.
func spacedRows(n, maxRows int) []int {
	if n <= 0 {
		return nil
	}
	if maxRows < 2 {
		maxRows = 2
	}
	if n <= maxRows {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, maxRows)
	for i := 0; i < maxRows; i++ {
		out = append(out, i*(n-1)/(maxRows-1))
	}
	// Spacing can duplicate neighbours at small n; keep strictly increasing.
	uniq := out[:1]
	for _, k := range out[1:] {
		if k > uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

// fmtNS renders virtual nanoseconds compactly (µs/ms/s granularity).
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9 && ns%1e9 == 0:
		return fmt.Sprintf("%ds", ns/1e9)
	case ns >= 1e6 && ns%1e6 == 0:
		return fmt.Sprintf("%dms", ns/1e6)
	case ns >= 1e3 && ns%1e3 == 0:
		return fmt.Sprintf("%dus", ns/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// fmtBytes renders byte counts compactly with integer arithmetic.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
