// Command slimio-top replays a telemetry dump (slimio-bench -telemetry) as
// a state dashboard: what every layer of every cell was doing, tick by
// virtual tick — live write amplification, GC copy traffic, reclaim-unit
// headroom, writeback and ring queue depths, WAL-buffer fill, pooled-buffer
// in-flight counts.
//
// Usage:
//
//	slimio-top -dump out/telemetry.json               # plain table (CI mode)
//	slimio-top -dump out/telemetry.json -mode live    # terminal dashboard
//	slimio-top -dump out/telemetry.json -cell slimio-fdp/always
//
// Table mode is deterministic (integer arithmetic, no wall clock, no ANSI)
// and is what `make top-smoke` gates on; live mode animates the same rows
// in place for humans.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/slimio/slimio/internal/telemetry"
)

func main() {
	var (
		dumpPath = flag.String("dump", "", "telemetry dump to render (required)")
		mode     = flag.String("mode", "table", "render mode: table (plain text) or live (animated dashboard)")
		cellSel  = flag.String("cell", "", "render only this cell label (default: all cells)")
		rows     = flag.Int("rows", 12, "table mode: max sample rows per cell (evenly spaced)")
		refresh  = flag.Duration("refresh", 80*time.Millisecond, "live mode: wall-clock time per tick frame")
	)
	flag.Parse()

	if *dumpPath == "" {
		fmt.Fprintln(os.Stderr, "slimio-top: -dump is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*dumpPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dump, err := telemetry.ParseDump(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cells := dump.Cells
	if *cellSel != "" {
		cells = nil
		for _, c := range dump.Cells {
			if c.Label == *cellSel {
				cells = append(cells, c)
			}
		}
		if len(cells) == 0 {
			fmt.Fprintf(os.Stderr, "slimio-top: no cell %q in %s (have: %s)\n",
				*cellSel, *dumpPath, strings.Join(labels(dump.Cells), ", "))
			os.Exit(1)
		}
	}

	switch *mode {
	case "table":
		w := bufio.NewWriter(os.Stdout)
		renderTables(w, dump.IntervalNS, cells, *rows)
		w.Flush()
	case "live":
		renderLive(dump.IntervalNS, cells, *refresh)
	default:
		fmt.Fprintf(os.Stderr, "slimio-top: unknown -mode %q (want table or live)\n", *mode)
		os.Exit(2)
	}
}

func labels(cells []telemetry.CellDump) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.Label
	}
	return out
}
