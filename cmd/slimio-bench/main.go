// Command slimio-bench regenerates the paper's tables and figures at a
// chosen scale and prints them in the paper's row format.
//
// Usage:
//
//	slimio-bench -exp all                 # every table and figure, small scale
//	slimio-bench -exp table3              # one experiment
//	slimio-bench -exp table3 -scale tiny  # quick run
//	slimio-bench -exp table3 -device 1024 -ops 200000 -keys 40000
//
// Experiments: table1 table2 table3 table4 table5 fig2 fig4 fig5 all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
)

func main() {
	var (
		expName = flag.String("exp", "all", "experiment: table1..table5, fig2, fig4, fig5, all")
		scale   = flag.String("scale", "small", "scale preset: tiny or small")
		device  = flag.Int64("device", 0, "override device size in MiB")
		keys    = flag.Int64("keys", 0, "override key range")
		ops     = flag.Int64("ops", 0, "override operations per repetition")
		reps    = flag.Int("reps", 0, "override repetitions")
		trigger = flag.Int64("trigger", 0, "override WAL-snapshot trigger in MiB")
		window  = flag.Duration("window", 0, "override figure 4/5 window (virtual time)")

		faultSeed  = flag.Int64("fault-seed", 0, "seed for the deterministic fault plan")
		readErr    = flag.Float64("read-err-rate", 0, "per-read probability of a transient read failure")
		programErr = flag.Float64("program-err-rate", 0, "per-program probability of a permanent failure (retires the block)")
		eraseErr   = flag.Float64("erase-err-rate", 0, "per-erase probability of an erase failure (retires the block)")
	)
	flag.Parse()

	sc := exp.SmallScale()
	if *scale == "tiny" {
		sc = exp.TinyScale()
	}
	if *device > 0 {
		sc.DeviceBytes = *device << 20
	}
	if *keys > 0 {
		sc.KeyRange = *keys
	}
	if *ops > 0 {
		sc.OpsPerRep = *ops
	}
	if *reps > 0 {
		sc.Reps = *reps
	}
	if *trigger > 0 {
		sc.WALTriggerBytes = *trigger << 20
	}
	figWindow := 3 * sim.Second
	if *window > 0 {
		figWindow = sim.Duration(window.Nanoseconds())
	}
	ctr := &metrics.Counter{}
	sc.FaultSeed = *faultSeed
	sc.ReadErrRate = *readErr
	sc.ProgramErrRate = *programErr
	sc.EraseErrRate = *eraseErr
	sc.Metrics = ctr

	wanted := strings.Split(*expName, ",")
	has := func(name string) bool {
		for _, w := range wanted {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	start := time.Now()
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if !has(name) {
			return
		}
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
		fmt.Printf("(%s finished in %.1fs wall time)\n\n", name, time.Since(t0).Seconds())
		// Each experiment holds a full simulated device (real page bytes);
		// return the memory before building the next one.
		debug.FreeOSMemory()
	}

	run("table1", func() (fmt.Stringer, error) { return exp.RunTable1(sc) })
	run("table2", func() (fmt.Stringer, error) { return exp.RunTable2(sc) })
	run("fig2", func() (fmt.Stringer, error) { return exp.RunFigure2(sc) })
	run("table3", func() (fmt.Stringer, error) { return exp.RunTable3(sc) })
	run("table4", func() (fmt.Stringer, error) { return exp.RunTable4(sc) })
	run("table5", func() (fmt.Stringer, error) { return exp.RunTable5(sc) })
	run("fig4", func() (fmt.Stringer, error) { return runFigure(4, sc, figWindow) })
	run("fig5", func() (fmt.Stringer, error) { return runFigure(5, sc, figWindow) })
	printFaultCounters(ctr)
	fmt.Printf("total wall time %.1fs\n", time.Since(start).Seconds())
}

// printFaultCounters summarizes injected faults and how the stack absorbed
// them (retries, retired blocks, migrations, lost pages) across every
// experiment that ran. Silent when nothing was injected or counted.
func printFaultCounters(ctr *metrics.Counter) {
	snap := ctr.Snapshot()
	if len(snap) == 0 {
		return
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("Fault & error-handling counters (all experiments):")
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", name, snap[name])
	}
	fmt.Println()
}

type figureReport struct {
	name       string
	base, slim *exp.TimelineResult
	warmup     sim.Duration
}

func runFigure(n int, sc exp.Scale, window sim.Duration) (fmt.Stringer, error) {
	var base, slim *exp.TimelineResult
	var err error
	if n == 4 {
		base, slim, err = exp.RunFigure4(sc, window)
	} else {
		base, slim, err = exp.RunFigure5(sc, window)
	}
	if err != nil {
		return nil, err
	}
	return &figureReport{name: fmt.Sprintf("Figure %d", n), base: base, slim: slim, warmup: window / 5}, nil
}

func (f *figureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Runtime RPS summary (use slimio-trace for the full series)\n", f.name)
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %8s %8s\n", "System", "Mean RPS", "Min RPS", "Floor", "Dips", "WAF")
	for _, tr := range []*exp.TimelineResult{f.base, f.slim} {
		s := tr.Summarize(f.warmup)
		floor := 0.0
		if s.MeanRPS > 0 {
			floor = s.MinRPS / s.MeanRPS
		}
		fmt.Fprintf(&b, "%-16s %12.0f %12.0f %9.0f%% %8d %8.2f\n",
			tr.Kind, s.MeanRPS, s.MinRPS, 100*floor, s.Nosedives, tr.WAF)
	}
	return b.String()
}
