// Command slimio-bench regenerates the paper's tables and figures at a
// chosen scale and prints them in the paper's row format.
//
// Usage:
//
//	slimio-bench -exp all                 # every table and figure, small scale
//	slimio-bench -exp table3              # one experiment
//	slimio-bench -exp table3 -scale tiny  # quick run
//	slimio-bench -exp table3 -device 1024 -ops 200000 -keys 40000
//	slimio-bench -tenants 4 -noisy       # multi-tenant isolation experiment
//
// Experiments: table1 table2 table3 table4 table5 fig2 fig4 fig5 all, plus
// isolation (selected by -tenants; not part of "all" so the committed
// BENCH_*.json baselines keep their experiment set).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/vtrace"
)

func main() {
	var (
		expName = flag.String("exp", "all", "experiment: table1..table5, fig2, fig4, fig5, all")
		scale   = flag.String("scale", "small", "scale preset: tiny or small")
		device  = flag.Int64("device", 0, "override device size in MiB")
		keys    = flag.Int64("keys", 0, "override key range")
		ops     = flag.Int64("ops", 0, "override operations per repetition")
		reps    = flag.Int("reps", 0, "override repetitions")
		trigger = flag.Int64("trigger", 0, "override WAL-snapshot trigger in MiB")
		window  = exp.SimDurationFlag("window", 0, "override figure 4/5 window (virtual time)")
		tenants = flag.Int("tenants", 0, "run the multi-tenant isolation experiment with this many co-located engines (adds exp \"isolation\")")
		noisy   = flag.Bool("noisy", false, "make tenant 0 a Zipf-heavy overwriter in the isolation experiment")

		parallel   = flag.Int("parallel", 0, "experiment cells run concurrently (0 = GOMAXPROCS, 1 = serial)")
		vtraceOut  = flag.String("vtrace", "", "trace the run and write a Chrome trace-event JSON file (requires a single -exp)")
		teleDir    = flag.String("telemetry", "", "sample per-layer telemetry and write telemetry.json, metrics.prom, and per-cell CSVs into this directory (requires a single -exp)")
		benchJSON  = flag.String("benchjson", "", "write per-experiment wall-clock/allocs/throughput records to this JSON file")
		compare    = flag.String("compare", "", "compare this run's allocator traffic against a committed BENCH_*.json and fail on regression")
		tolerance  = flag.Float64("tolerance", 0.15, "allowed fractional allocs/alloc_bytes growth before -compare fails")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		faultSeed  = flag.Int64("fault-seed", 0, "seed for the deterministic fault plan")
		readErr    = flag.Float64("read-err-rate", 0, "per-read probability of a transient read failure")
		programErr = flag.Float64("program-err-rate", 0, "per-program probability of a permanent failure (retires the block)")
		eraseErr   = flag.Float64("erase-err-rate", 0, "per-erase probability of an erase failure (retires the block)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sc := exp.SmallScale()
	if *scale == "tiny" {
		sc = exp.TinyScale()
	}
	if *device > 0 {
		sc.DeviceBytes = *device << 20
	}
	if *keys > 0 {
		sc.KeyRange = *keys
	}
	if *ops > 0 {
		sc.OpsPerRep = *ops
	}
	if *reps > 0 {
		sc.Reps = *reps
	}
	if *trigger > 0 {
		sc.WALTriggerBytes = *trigger << 20
	}
	figWindow := 3 * sim.Second
	if *window > 0 {
		figWindow = *window
	}
	ctr := &metrics.Counter{}
	sc.FaultSeed = *faultSeed
	sc.ReadErrRate = *readErr
	sc.ProgramErrRate = *programErr
	sc.EraseErrRate = *eraseErr
	sc.Metrics = ctr
	sc.Parallel = *parallel

	wanted := strings.Split(*expName, ",")
	hasExact := func(name string) bool {
		for _, w := range wanted {
			if w == name {
				return true
			}
		}
		return false
	}
	// The isolation experiment is opt-in via -tenants (or an explicit -exp
	// isolation); "all" deliberately excludes it so the committed bench
	// baselines keep their experiment set. -tenants alone (no explicit
	// -exp) runs just the isolation experiment.
	expSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})
	if *tenants > 0 && !expSet {
		wanted = []string{"isolation"}
	} else if *tenants > 0 && !hasExact("isolation") {
		wanted = append(wanted, "isolation")
	}
	if hasExact("isolation") && *tenants <= 0 {
		*tenants = 2
	}
	has := func(name string) bool {
		if name == "isolation" {
			return hasExact(name)
		}
		for _, w := range wanted {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	if *vtraceOut != "" {
		// One registry per run: tracer labels are per-cell, and reusing a
		// label across experiments would interleave unrelated runs in one
		// lane, so tracing is limited to a single experiment.
		if len(wanted) != 1 || wanted[0] == "all" {
			fmt.Fprintln(os.Stderr, "-vtrace requires exactly one -exp experiment")
			os.Exit(2)
		}
		sc.Trace = vtrace.NewRegistry()
	}
	if *teleDir != "" {
		// Same labelling rule as -vtrace: telemetry cells are per-cell-label.
		if len(wanted) != 1 || wanted[0] == "all" {
			fmt.Fprintln(os.Stderr, "-telemetry requires exactly one -exp experiment")
			os.Exit(2)
		}
		sc.Telemetry = telemetry.NewRegistry(0)
		// Failures mid-run (unrecovered faults, cell panics) dump their
		// flight rings next to the telemetry artifacts.
		sc.Telemetry.FlightDir = *teleDir
	}

	// Per-cell alloc attribution needs serial cells: MemStats deltas are
	// process-wide, so concurrent cells would bill each other's traffic.
	var cellSink *exp.CellCostSink
	if (*benchJSON != "" || *compare != "") && (*parallel == 1 || runtime.GOMAXPROCS(0) == 1) {
		cellSink = &exp.CellCostSink{}
		sc.CellCosts = cellSink
	}

	start := time.Now()
	report := benchReport{Scale: sc.Name, Parallel: *parallel, GoMaxProcs: runtime.GOMAXPROCS(0)}
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if !has(name) {
			return
		}
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(t0).Seconds()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		rec := benchRecord{
			Name:        name,
			WallSeconds: wall,
			Allocs:      int64(m1.Mallocs - m0.Mallocs),
			AllocBytes:  int64(m1.TotalAlloc - m0.TotalAlloc),
			VirtualRPS:  virtualRPS(out),
		}
		if cellSink != nil {
			rec.Cells = cellSink.Drain()
		}
		report.Experiments = append(report.Experiments, rec)
		fmt.Println(out.String())
		fmt.Printf("(%s finished in %.1fs wall time)\n\n", name, wall)
		// Each experiment holds a full simulated device (real page bytes);
		// return the memory before building the next one.
		debug.FreeOSMemory()
	}

	run("table1", func() (fmt.Stringer, error) { return exp.RunTable1(sc) })
	run("table2", func() (fmt.Stringer, error) { return exp.RunTable2(sc) })
	run("fig2", func() (fmt.Stringer, error) { return exp.RunFigure2(sc) })
	run("table3", func() (fmt.Stringer, error) { return exp.RunTable3(sc) })
	run("table4", func() (fmt.Stringer, error) { return exp.RunTable4(sc) })
	run("table5", func() (fmt.Stringer, error) { return exp.RunTable5(sc) })
	run("fig4", func() (fmt.Stringer, error) { return runFigure(4, sc, figWindow) })
	run("fig5", func() (fmt.Stringer, error) { return runFigure(5, sc, figWindow) })
	run("isolation", func() (fmt.Stringer, error) { return exp.RunIsolation(sc, *tenants, *noisy) })
	printFaultCounters(ctr)
	if sc.Trace != nil {
		if err := writeTrace(*vtraceOut, sc.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if sc.Telemetry != nil {
		if err := writeTelemetry(*teleDir, sc.Telemetry, ctr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("total wall time %.1fs\n", time.Since(start).Seconds())

	report.TotalWallSeconds = time.Since(start).Seconds()
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*benchJSON, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	if *compare != "" {
		if err := compareReports(*compare, &report, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// benchReport is the -benchjson payload: the perf trajectory of the suite,
// tracked as a committed BENCH_<n>.json per PR.
type benchReport struct {
	Scale            string        `json:"scale"`
	Parallel         int           `json:"parallel"`
	GoMaxProcs       int           `json:"gomaxprocs"`
	Experiments      []benchRecord `json:"experiments"`
	TotalWallSeconds float64       `json:"total_wall_seconds"`
}

// benchRecord is one experiment's cost: wall clock, allocator traffic, and
// the virtual-time throughput the simulated systems achieved. Cells breaks
// the allocator traffic down per experiment cell (serial runs only), so a
// regression is attributable to one configuration rather than one table.
type benchRecord struct {
	Name        string         `json:"name"`
	WallSeconds float64        `json:"wall_seconds"`
	Allocs      int64          `json:"allocs"`
	AllocBytes  int64          `json:"alloc_bytes"`
	VirtualRPS  float64        `json:"virtual_rps,omitempty"`
	Cells       []exp.CellCost `json:"cells,omitempty"`
}

// virtualRPS extracts a representative virtual-time request rate from an
// experiment result (mean over rows/systems), 0 where the experiment does
// not measure one.
func virtualRPS(out fmt.Stringer) float64 {
	mean := func(vals []float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	switch r := out.(type) {
	case *exp.Table1Result:
		var vals []float64
		for _, row := range r.Rows {
			vals = append(vals, row.RPS)
		}
		return mean(vals)
	case *exp.OverallResult:
		var vals []float64
		for _, row := range r.Rows {
			vals = append(vals, row.Result.AvgRPS)
		}
		return mean(vals)
	case *figureReport:
		var vals []float64
		for _, tr := range []*exp.TimelineResult{r.base, r.slim} {
			vals = append(vals, tr.Summarize(r.warmup).MeanRPS)
		}
		return mean(vals)
	default:
		return 0
	}
}

// printFaultCounters summarizes injected faults and how the stack absorbed
// them (retries, retired blocks, migrations, lost pages) across every
// experiment that ran. Silent when nothing was injected or counted.
func printFaultCounters(ctr *metrics.Counter) {
	kvs := ctr.Sorted()
	if len(kvs) == 0 {
		return
	}
	fmt.Println("Fault & error-handling counters (all experiments):")
	for _, kv := range kvs {
		fmt.Printf("  %-24s %d\n", kv.Key, kv.Value)
	}
	fmt.Println()
}

// writeTelemetry exports the run's telemetry registry into dir: the
// canonical JSON dump (validated against its own schema before writing, the
// same trust-but-verify step as writeTrace), an OpenMetrics text snapshot
// carrying the fault/error counter totals, and one CSV time-series per cell.
func writeTelemetry(dir string, reg *telemetry.Registry, ctr *metrics.Counter) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := reg.ExportJSON(&buf); err != nil {
		return fmt.Errorf("export telemetry: %w", err)
	}
	if err := telemetry.ValidateDump(buf.Bytes()); err != nil {
		return fmt.Errorf("exported telemetry failed validation: %w", err)
	}
	dumpPath := filepath.Join(dir, "telemetry.json")
	if err := os.WriteFile(dumpPath, buf.Bytes(), 0o644); err != nil {
		return err
	}

	var prom bytes.Buffer
	if err := reg.ExportOpenMetrics(&prom, ctr.Sorted()); err != nil {
		return fmt.Errorf("export openmetrics: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "metrics.prom"), prom.Bytes(), 0o644); err != nil {
		return err
	}

	dump := reg.Snapshot()
	for i := range dump.Cells {
		c := &dump.Cells[i]
		var csv bytes.Buffer
		if err := c.CSV(&csv); err != nil {
			return err
		}
		name := telemetry.SanitizeLabel(c.Label) + ".csv"
		if err := os.WriteFile(filepath.Join(dir, name), csv.Bytes(), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%d bytes, %d cells)\n", dumpPath, buf.Len(), len(dump.Cells))
	return nil
}

// writeTrace exports the run's span registry as Chrome trace-event JSON,
// validating it against the trace-event schema before writing.
func writeTrace(path string, reg *vtrace.Registry) error {
	var buf bytes.Buffer
	if err := reg.Export(&buf); err != nil {
		return fmt.Errorf("export trace: %w", err)
	}
	if err := vtrace.ValidateTrace(buf.Bytes()); err != nil {
		return fmt.Errorf("exported trace failed validation: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d cells)\n", path, buf.Len(), len(reg.Labels()))
	return nil
}

type figureReport struct {
	name       string
	base, slim *exp.TimelineResult
	warmup     sim.Duration
}

func runFigure(n int, sc exp.Scale, window sim.Duration) (fmt.Stringer, error) {
	var base, slim *exp.TimelineResult
	var err error
	if n == 4 {
		base, slim, err = exp.RunFigure4(sc, window)
	} else {
		base, slim, err = exp.RunFigure5(sc, window)
	}
	if err != nil {
		return nil, err
	}
	return &figureReport{name: fmt.Sprintf("Figure %d", n), base: base, slim: slim, warmup: window / 5}, nil
}

func (f *figureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Runtime RPS summary (use slimio-trace for the full series)\n", f.name)
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %8s %8s\n", "System", "Mean RPS", "Min RPS", "Floor", "Dips", "WAF")
	for _, tr := range []*exp.TimelineResult{f.base, f.slim} {
		s := tr.Summarize(f.warmup)
		floor := 0.0
		if s.MeanRPS > 0 {
			floor = s.MinRPS / s.MeanRPS
		}
		fmt.Fprintf(&b, "%-16s %12.0f %12.0f %9.0f%% %8d %8.2f\n",
			tr.Kind, s.MeanRPS, s.MinRPS, 100*floor, s.Nosedives, tr.WAF)
	}
	return b.String()
}
