package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// compareReports diffs this run's allocator traffic against a committed
// BENCH_*.json snapshot and returns an error when any experiment's allocs
// or alloc_bytes grew by more than tolerance (fractional, e.g. 0.15). The
// full delta table prints either way, so CI logs show where the traffic
// went even on a pass. Wall clock is reported but never gates: CI machines
// vary, allocator traffic does not.
func compareReports(baselinePath string, cur *benchReport, tolerance float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("compare: parsing %s: %w", baselinePath, err)
	}
	if base.Scale != cur.Scale {
		return fmt.Errorf("compare: scale mismatch: baseline %s is %q, this run is %q",
			baselinePath, base.Scale, cur.Scale)
	}
	byName := make(map[string]benchRecord, len(base.Experiments))
	for _, r := range base.Experiments {
		byName[r.Name] = r
	}

	pct := func(old, new int64) float64 {
		if old == 0 {
			return 0
		}
		return 100 * (float64(new) - float64(old)) / float64(old)
	}
	var regressions []string
	var oldAllocs, newAllocs, oldBytes, newBytes int64
	fmt.Printf("Allocator traffic vs %s (tolerance %+.0f%%):\n", baselinePath, 100*tolerance)
	fmt.Printf("%-10s %14s %9s %16s %9s\n", "exp", "allocs", "delta", "alloc_bytes", "delta")
	for _, r := range cur.Experiments {
		old, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-10s %14d %9s %16d %9s\n", r.Name, r.Allocs, "new", r.AllocBytes, "new")
			continue
		}
		oldAllocs += old.Allocs
		newAllocs += r.Allocs
		oldBytes += old.AllocBytes
		newBytes += r.AllocBytes
		fmt.Printf("%-10s %14d %+8.1f%% %16d %+8.1f%%\n",
			r.Name, r.Allocs, pct(old.Allocs, r.Allocs), r.AllocBytes, pct(old.AllocBytes, r.AllocBytes))
		if float64(r.Allocs) > float64(old.Allocs)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs %d -> %d (%+.1f%%)", r.Name, old.Allocs, r.Allocs, pct(old.Allocs, r.Allocs)))
		}
		if float64(r.AllocBytes) > float64(old.AllocBytes)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: alloc_bytes %d -> %d (%+.1f%%)", r.Name, old.AllocBytes, r.AllocBytes, pct(old.AllocBytes, r.AllocBytes)))
		}
	}
	fmt.Printf("%-10s %14d %+8.1f%% %16d %+8.1f%%\n\n",
		"total", newAllocs, pct(oldAllocs, newAllocs), newBytes, pct(oldBytes, newBytes))
	if len(regressions) > 0 {
		return fmt.Errorf("compare: allocator regression beyond %.0f%% tolerance:\n  %s",
			100*tolerance, strings.Join(regressions, "\n  "))
	}
	fmt.Println("no allocator regressions")
	return nil
}
